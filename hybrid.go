package bonsai

import (
	"bonsai/internal/bridge"
	"bonsai/internal/vec"
)

// HybridConfig configures a Hybrid system (see NewHybrid).
type HybridConfig struct {
	// Theta, Softening and DT govern the tree-integrated galaxy exactly as
	// in Config; DT is also the bridge coupling step.
	Theta     float64
	Softening float64
	DT        float64

	// EtaHermite is the accuracy parameter of the subsystem's 4th-order
	// Hermite integrator (default 0.014); DirectSoftening its softening
	// (default 0: fully collisional).
	EtaHermite      float64
	DirectSoftening float64
}

// Hybrid couples a tree-integrated galaxy with a small collisional
// subsystem (massive black holes and their stellar cusps) integrated by a
// 4th-order Hermite direct N-body code — the multi-physics combination the
// paper's §VII describes as the natural extension of Bonsai, realized
// AMUSE-style with second-order bridge kicks.
type Hybrid struct {
	inner *bridge.System
}

// NewHybrid builds the coupled system. Subsystem particles keep their IDs
// but live outside the tree: the tree never sees them except through the
// bridge kicks, so their mutual orbits resolve scales far below the tree
// softening.
func NewHybrid(galaxy, subsystem []Particle, cfg HybridConfig) (*Hybrid, error) {
	subPos := make([]vec.V3, len(subsystem))
	subVel := make([]vec.V3, len(subsystem))
	subMass := make([]float64, len(subsystem))
	for i, p := range subsystem {
		subPos[i] = vec.V3{X: p.Pos.X, Y: p.Pos.Y, Z: p.Pos.Z}
		subVel[i] = vec.V3{X: p.Vel.X, Y: p.Vel.Y, Z: p.Vel.Z}
		subMass[i] = p.Mass
	}
	inner, err := bridge.New(toBody(galaxy), subPos, subVel, subMass, bridge.Config{
		Theta:      cfg.Theta,
		Eps:        cfg.Softening,
		DT:         cfg.DT,
		EtaHermite: cfg.EtaHermite,
		EpsDirect:  cfg.DirectSoftening,
	})
	if err != nil {
		return nil, err
	}
	return &Hybrid{inner: inner}, nil
}

// Step advances one bridge step and returns the number of Hermite sub-steps
// the subsystem needed.
func (h *Hybrid) Step() int { return h.inner.Step() }

// Run advances n bridge steps.
func (h *Hybrid) Run(n int) { h.inner.Run(n) }

// Time returns the current time.
func (h *Hybrid) Time() float64 { return h.inner.Time() }

// Galaxy returns the current tree-integrated particles.
func (h *Hybrid) Galaxy() []Particle {
	return fromBody(h.inner.Galaxy())
}

// Subsystem returns the current state of the Hermite-integrated particles,
// in their original order.
func (h *Hybrid) Subsystem() []Particle {
	sub := h.inner.Sub
	out := make([]Particle, sub.N())
	for i := 0; i < sub.N(); i++ {
		out[i] = Particle{
			Pos:  Vec3{sub.Pos[i].X, sub.Pos[i].Y, sub.Pos[i].Z},
			Vel:  Vec3{sub.Vel[i].X, sub.Vel[i].Y, sub.Vel[i].Z},
			Mass: sub.Mass[i],
			ID:   int64(i),
		}
	}
	return out
}

// Energy returns the total kinetic and potential energy of the coupled
// system (galaxy self-energy, subsystem self-energy, and cross terms).
func (h *Hybrid) Energy() (kin, pot float64) { return h.inner.Energy() }
