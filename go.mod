module bonsai

go 1.22
